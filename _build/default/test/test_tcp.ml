(* Tests for pftk_tcp: RTO estimation, the delayed-ACK receiver, the
   packet-level Reno sender (via end-to-end connections), and the
   round-based model simulator. *)

module Sim = Pftk_netsim.Sim
module Rto = Pftk_tcp.Rto
module Receiver = Pftk_tcp.Receiver
module Reno = Pftk_tcp.Reno
module Connection = Pftk_tcp.Connection
module Round_sim = Pftk_tcp.Round_sim
module Segment = Pftk_tcp.Segment
module Loss = Pftk_loss.Loss_process
open Pftk_core

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let close ?(rel = 0.05) msg expected actual =
  let err = Float.abs (expected -. actual) /. Float.abs expected in
  if err > rel then
    Alcotest.failf "%s: expected %g within %g%%, got %g" msg expected
      (100. *. rel) actual

(* --- Rto --------------------------------------------------------------------- *)

let test_rto_initial () =
  let t = Rto.create () in
  check_float "initial rto" 3. (Rto.rto t);
  Alcotest.(check bool) "no srtt yet" true (Rto.srtt t = None)

let test_rto_first_sample () =
  let t = Rto.create () in
  Rto.observe t 0.5;
  check_float "srtt = r" 0.5 (Option.get (Rto.srtt t));
  check_float "rttvar = r/2" 0.25 (Option.get (Rto.rttvar t));
  (* rto = srtt + 4 * rttvar = 1.5 *)
  check_float "rto" 1.5 (Rto.rto t)

let test_rto_ewma () =
  let t = Rto.create () in
  Rto.observe t 1.;
  Rto.observe t 1.;
  (* Second identical sample: rttvar = 0.75*0.5 + 0.25*0 = 0.375; srtt = 1. *)
  check_float "srtt stable" 1. (Option.get (Rto.srtt t));
  check_float "rttvar decays" 0.375 (Option.get (Rto.rttvar t))

let test_rto_clamps () =
  let t = Rto.create ~min_rto:1. ~max_rto:2. () in
  Rto.observe t 0.01;
  check_float "min clamp" 1. (Rto.rto t);
  let t2 = Rto.create ~min_rto:0.1 ~max_rto:2. () in
  Rto.observe t2 10.;
  check_float "max clamp" 2. (Rto.rto t2)

let test_rto_converges () =
  let t = Rto.create ~min_rto:0.01 () in
  for _ = 1 to 200 do
    Rto.observe t 0.3
  done;
  (* With constant samples rttvar -> 0, so rto -> srtt + granularity. *)
  close ~rel:0.05 "converges to srtt + granularity" 0.4 (Rto.rto t);
  Alcotest.(check int) "sample count" 200 (Rto.samples t)

let test_rto_validation () =
  Alcotest.check_raises "nonpositive sample"
    (Invalid_argument "Rto.observe: sample must be positive") (fun () ->
      Rto.observe (Rto.create ()) 0.)

(* --- Receiver ------------------------------------------------------------------ *)

let make_receiver ?ack_every () =
  let sim = Sim.create () in
  let acks = ref [] in
  let receiver =
    Receiver.create ?ack_every ~sim
      ~send_ack:(fun a -> acks := a.Segment.ack :: !acks)
      ()
  in
  (sim, receiver, acks)

let data seq = { Segment.seq; size = 1500; retransmission = false }

let test_receiver_delayed_ack () =
  let sim, receiver, acks = make_receiver () in
  Receiver.on_data receiver (data 0);
  Alcotest.(check (list int)) "first segment held" [] !acks;
  Receiver.on_data receiver (data 1);
  Alcotest.(check (list int)) "acked every 2" [ 2 ] !acks;
  ignore sim

let test_receiver_delayed_ack_timer () =
  let sim, receiver, acks = make_receiver () in
  Receiver.on_data receiver (data 0);
  Sim.run sim;
  (* The 200 ms delayed-ACK timer flushes the pending ACK. *)
  Alcotest.(check (list int)) "timer flushes" [ 1 ] !acks

let test_receiver_out_of_order_dup_acks () =
  let _sim, receiver, acks = make_receiver () in
  Receiver.on_data receiver (data 0);
  Receiver.on_data receiver (data 1);
  (* Hole at 2: each later arrival elicits an immediate duplicate ACK of 2. *)
  Receiver.on_data receiver (data 3);
  Receiver.on_data receiver (data 4);
  Receiver.on_data receiver (data 5);
  Alcotest.(check (list int)) "dup acks" [ 2; 2; 2; 2 ] !acks

let test_receiver_hole_fill () =
  let _sim, receiver, acks = make_receiver () in
  Receiver.on_data receiver (data 0);
  Receiver.on_data receiver (data 1);
  Receiver.on_data receiver (data 3);
  Receiver.on_data receiver (data 2);
  (* Filling the hole acknowledges through 4 immediately. *)
  Alcotest.(check int) "cumulative point" 4 (Receiver.rcv_nxt receiver);
  Alcotest.(check (list int)) "final ack covers buffer" [ 4; 2; 2 ] !acks

let test_receiver_duplicate_data () =
  let _sim, receiver, acks = make_receiver () in
  Receiver.on_data receiver (data 0);
  Receiver.on_data receiver (data 1);
  Receiver.on_data receiver (data 0);
  Alcotest.(check int) "duplicate counted" 1 (Receiver.duplicates_received receiver);
  Alcotest.(check (list int)) "duplicate elicits immediate ack" [ 2; 2 ] !acks

let test_receiver_counters () =
  let _sim, receiver, _ = make_receiver () in
  List.iter (fun s -> Receiver.on_data receiver (data s)) [ 0; 1; 2; 3 ];
  Alcotest.(check int) "segments received" 4 (Receiver.segments_received receiver);
  Alcotest.(check int) "acks sent" 2 (Receiver.acks_sent receiver)

let test_receiver_ack_every_1 () =
  let _sim, receiver, acks = make_receiver ~ack_every:1 () in
  Receiver.on_data receiver (data 0);
  Receiver.on_data receiver (data 1);
  Alcotest.(check (list int)) "b = 1 acks immediately" [ 2; 1 ] !acks

(* --- Connection (packet-level Reno, end to end) ---------------------------------- *)

let lossless_scenario =
  {
    Connection.default_scenario with
    Connection.forward_bandwidth = 1_250_000.;
    reverse_bandwidth = 1_250_000.;
    forward_delay = 0.05;
    reverse_delay = 0.05;
    buffer = Pftk_netsim.Queue_discipline.drop_tail ~capacity:100;
  }

let test_connection_lossless_window_limited () =
  (* No loss: the flow settles at Wm per RTT. *)
  let result = Connection.run ~duration:60. lossless_scenario in
  Alcotest.(check int) "no retransmissions" 0 result.Connection.retransmissions;
  Alcotest.(check int) "no timeouts" 0 result.Connection.timeouts;
  (* Wm 32 packets / ~0.11 s RTT (0.1 prop + serialization) ~ 280 pkt/s. *)
  close ~rel:0.2 "rate ~ Wm/RTT" 280. result.Connection.send_rate

let test_connection_delivers_everything_lossless () =
  let result = Connection.run ~duration:30. lossless_scenario in
  (* In-flight at cutoff accounts for any tiny difference. *)
  Alcotest.(check bool) "sent ~ delivered" true
    (result.Connection.packets_sent - result.Connection.segments_delivered < 64)

let test_connection_fast_retransmit_on_random_loss () =
  let rng = Pftk_stats.Rng.create ~seed:2L () in
  let scenario =
    { lossless_scenario with
      Connection.data_loss = Some (Loss.bernoulli rng ~p:0.005) }
  in
  let result = Connection.run ~seed:2L ~duration:120. scenario in
  Alcotest.(check bool) "fast retransmits happen" true
    (result.Connection.fast_retransmits > 0);
  Alcotest.(check bool) "rate dropped below lossless" true
    (result.Connection.send_rate < 280.)

let test_connection_timeouts_under_heavy_loss () =
  let rng = Pftk_stats.Rng.create ~seed:3L () in
  let scenario =
    { lossless_scenario with
      Connection.data_loss = Some (Loss.bernoulli rng ~p:0.15) }
  in
  let result = Connection.run ~seed:3L ~duration:300. scenario in
  Alcotest.(check bool) "timeouts happen" true (result.Connection.timeouts > 10);
  (* Regression test for the pipe-leak stall: the connection must keep
     making progress for the whole run. *)
  Alcotest.(check bool) "no stall" true (result.Connection.packets_sent > 300)

let test_connection_queue_loss_only () =
  (* Tiny buffer, no random loss: drops come from the bottleneck queue and
     the flow self-clocks around them. *)
  let scenario =
    {
      lossless_scenario with
      Connection.forward_bandwidth = 125_000.;
      buffer = Pftk_netsim.Queue_discipline.drop_tail ~capacity:5;
    }
  in
  let result = Connection.run ~duration:120. scenario in
  Alcotest.(check bool) "queue drops occurred" true
    (result.Connection.forward_stats.Pftk_netsim.Link.dropped_queue > 0);
  (* Bottleneck is ~85 pkt/s (125 kB/s / 1500 B); the flow should get most
     of it. *)
  Alcotest.(check bool) "keeps the pipe busy" true
    (result.Connection.send_rate > 40.)

let test_connection_model_agreement () =
  (* The headline validation: measured send rate within 40% of the full
     model evaluated at the trace's own measurements. *)
  let rng = Pftk_stats.Rng.create ~seed:4L () in
  let scenario =
    { lossless_scenario with
      Connection.data_loss = Some (Loss.bernoulli rng ~p:0.02) }
  in
  let result = Connection.run ~seed:4L ~duration:600. scenario in
  let summary = Pftk_trace.Analyzer.summarize result.Connection.recorder in
  let params =
    Params.make ~rtt:summary.Pftk_trace.Analyzer.avg_rtt
      ~t0:(Float.max 0.2 summary.Pftk_trace.Analyzer.avg_t0)
      ~wm:32 ()
  in
  let predicted =
    Full_model.send_rate params summary.Pftk_trace.Analyzer.observed_p
  in
  close ~rel:0.4 "model vs packet-level sim" predicted
    result.Connection.send_rate

let test_connection_rtt_samples_positive () =
  let result = Connection.run ~duration:30. lossless_scenario in
  Alcotest.(check bool) "has rtt samples" true
    (Array.length result.Connection.rtt_flight_samples > 10);
  Array.iter
    (fun (rtt, flight) ->
      Alcotest.(check bool) "positive sample" true (rtt > 0. && flight >= 0))
    result.Connection.rtt_flight_samples

let test_connection_deterministic () =
  let r1 = Connection.run ~seed:9L ~duration:30. lossless_scenario in
  let r2 = Connection.run ~seed:9L ~duration:30. lossless_scenario in
  Alcotest.(check int) "same packet count" r1.Connection.packets_sent
    r2.Connection.packets_sent

let test_connection_dup_ack_threshold_2 () =
  (* A Linux-style sender (threshold 2) fires fast retransmit more easily:
     with the same loss it should see at least as many fast retransmits. *)
  let run threshold seed =
    let rng = Pftk_stats.Rng.create ~seed () in
    let scenario =
      {
        lossless_scenario with
        Connection.data_loss = Some (Loss.bernoulli rng ~p:0.01);
        sender = { Reno.default_config with dup_ack_threshold = threshold };
      }
    in
    (Connection.run ~seed ~duration:200. scenario).Connection.fast_retransmits
  in
  Alcotest.(check bool) "threshold 2 >= threshold 3" true
    (run 2 11L >= run 3 11L)

(* --- Reno mechanics under a microscope ------------------------------------------------
   Deterministic scenarios with scripted losses, verified event by event
   from the trace. *)

let scripted_scenario pattern =
  {
    lossless_scenario with
    Connection.data_loss = Some (Loss.scripted pattern);
  }

(* Drop exactly the [n]-th data packet (0-based), nothing else. *)
let drop_only n total =
  Array.init total (fun i -> i = n)

let events_of result = Pftk_trace.Recorder.events result.Connection.recorder

let test_exact_fast_retransmit () =
  (* One mid-stream loss with a big window behind it: detection must be by
     exactly [threshold] duplicate ACKs, and the loss must cost no
     timeout. *)
  let result =
    Connection.run ~duration:20. (scripted_scenario (drop_only 40 100_000))
  in
  Alcotest.(check int) "one fast retransmit" 1 result.Connection.fast_retransmits;
  Alcotest.(check int) "no timeouts" 0 result.Connection.timeouts;
  Alcotest.(check int) "exactly one retransmission" 1 result.Connection.retransmissions;
  (* The retransmission is of the dropped sequence number. *)
  let rexmit_seqs =
    Array.to_list (events_of result)
    |> List.filter_map (fun e ->
           match e.Pftk_trace.Event.kind with
           | Pftk_trace.Event.Segment_sent { seq; retransmission = true; _ } ->
               Some seq
           | _ -> None)
  in
  Alcotest.(check (list int)) "retransmitted the dropped packet" [ 40 ] rexmit_seqs

let test_dup_ack_count_before_retransmit () =
  (* Count duplicate ACKs between the loss and the retransmission: must be
     exactly the threshold (3). *)
  let result =
    Connection.run ~duration:20. (scripted_scenario (drop_only 40 100_000))
  in
  let events = events_of result in
  let rexmit_time = ref infinity in
  Array.iter
    (fun e ->
      match e.Pftk_trace.Event.kind with
      | Pftk_trace.Event.Fast_retransmit_triggered _ ->
          rexmit_time := e.Pftk_trace.Event.time
      | _ -> ())
    events;
  let dup_acks = ref 0 and last_ack = ref (-1) in
  Array.iter
    (fun e ->
      match e.Pftk_trace.Event.kind with
      | Pftk_trace.Event.Ack_received { ack }
        when e.Pftk_trace.Event.time <= !rexmit_time ->
          if ack = !last_ack && ack = 40 then incr dup_acks;
          last_ack := ack
      | _ -> ())
    events;
  Alcotest.(check int) "three duplicate ACKs" 3 !dup_acks

let test_cwnd_halves_after_fast_retransmit () =
  let result =
    Connection.run ~duration:20. (scripted_scenario (drop_only 200 100_000))
  in
  let events = events_of result in
  (* cwnd just before the fast retransmit vs shortly after recovery. *)
  let fr_time = ref infinity in
  Array.iter
    (fun e ->
      match e.Pftk_trace.Event.kind with
      | Pftk_trace.Event.Fast_retransmit_triggered _ ->
          if !fr_time = infinity then fr_time := e.Pftk_trace.Event.time
      | _ -> ())
    events;
  let before = ref 0. and after = ref None in
  Array.iter
    (fun e ->
      match e.Pftk_trace.Event.kind with
      | Pftk_trace.Event.Segment_sent { cwnd; retransmission = false; _ } ->
          if e.Pftk_trace.Event.time < !fr_time then before := cwnd
          else if
            !after = None
            && e.Pftk_trace.Event.time > !fr_time +. 0.2 (* past recovery *)
          then after := Some cwnd
      | _ -> ())
    events;
  match !after with
  | Some after_cwnd ->
      Alcotest.(check bool)
        (Printf.sprintf "halved (%.1f -> %.1f)" !before after_cwnd)
        true
        (after_cwnd < 0.7 *. !before && after_cwnd > 0.3 *. !before)
  | None -> Alcotest.fail "no post-recovery send found"

let test_timeout_when_window_too_small () =
  (* Drop a packet when the window is 1 (the very first): no dup ACKs are
     possible, so recovery must be by timeout. *)
  let result =
    Connection.run ~duration:20. (scripted_scenario (drop_only 0 100_000))
  in
  Alcotest.(check int) "no fast retransmit" 0 result.Connection.fast_retransmits;
  Alcotest.(check bool) "recovered by timeout" true (result.Connection.timeouts >= 1);
  Alcotest.(check bool) "transfer proceeded" true
    (result.Connection.packets_sent > 1000)

let test_exponential_backoff_timing () =
  (* Kill the data path completely: successive timer firings must be
     (roughly) doubly spaced until the cap. *)
  let all_drops = Loss.scripted [| true |] in
  let scenario =
    { lossless_scenario with Connection.data_loss = Some all_drops }
  in
  let result = Connection.run ~duration:120. scenario in
  let firings =
    Array.to_list (events_of result)
    |> List.filter_map (fun e ->
           match e.Pftk_trace.Event.kind with
           | Pftk_trace.Event.Timer_fired { backoff; _ } ->
               Some (backoff, e.Pftk_trace.Event.time)
           | _ -> None)
  in
  Alcotest.(check bool) "several firings" true (List.length firings >= 4);
  (* Backoff counters increase 1, 2, 3, ... *)
  List.iteri
    (fun i (backoff, _) ->
      Alcotest.(check int) "backoff counts up" (i + 1) backoff)
    firings;
  (* Inter-firing gaps roughly double while below the cap. *)
  let times = List.map snd firings in
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b -. a) :: gaps rest
    | _ -> []
  in
  let rec check_doubling = function
    | g1 :: (g2 :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "gap doubles (%.2f -> %.2f)" g1 g2)
          true
          (g2 > 1.5 *. g1 && g2 < 2.5 *. g1);
        check_doubling rest
    | _ -> ()
  in
  check_doubling (gaps (List.filteri (fun i _ -> i < 5) times))

let test_receiver_window_clamps_flight () =
  let scenario =
    { lossless_scenario with
      Connection.sender = { Reno.default_config with wm = 4 } }
  in
  let result = Connection.run ~duration:30. scenario in
  Array.iter
    (fun e ->
      match e.Pftk_trace.Event.kind with
      | Pftk_trace.Event.Segment_sent { flight; _ } ->
          Alcotest.(check bool) "flight <= wm" true (flight <= 4)
      | _ -> ())
    (events_of result)

let test_delayed_ack_ratio () =
  (* Lossless with delayed ACKs: roughly one ACK per two packets. *)
  let result = Connection.run ~duration:30. lossless_scenario in
  let acks =
    Array.fold_left
      (fun n e ->
        match e.Pftk_trace.Event.kind with
        | Pftk_trace.Event.Ack_received _ -> n + 1
        | _ -> n)
      0 (events_of result)
  in
  let ratio = float_of_int result.Connection.packets_sent /. float_of_int acks in
  Alcotest.(check bool)
    (Printf.sprintf "packets/acks ~ 2 (%.2f)" ratio)
    true
    (ratio > 1.8 && ratio < 2.2)

(* --- Recovery styles: Reno vs NewReno vs SACK ------------------------------------------
   The Fall-Floyd comparison (the paper's reference [3]): multiple losses
   in one window tell the three apart. *)

let recovery_scenario recovery pattern =
  {
    lossless_scenario with
    Connection.data_loss = Some (Loss.scripted pattern);
    sender = { Reno.default_config with recovery };
  }

(* Drop three spread packets of one window. *)
let three_drops = Array.init 100_000 (fun i -> i = 100 || i = 103 || i = 106)

let test_reno_multi_loss_times_out () =
  let r = Connection.run ~duration:30. (recovery_scenario Reno.Reno_recovery three_drops) in
  Alcotest.(check bool) "classic Reno needs a timeout" true
    (r.Connection.timeouts >= 1)

let test_newreno_multi_loss_no_timeout () =
  let r =
    Connection.run ~duration:30. (recovery_scenario Reno.Newreno_recovery three_drops)
  in
  Alcotest.(check int) "no timeout" 0 r.Connection.timeouts;
  Alcotest.(check int) "one recovery episode" 1 r.Connection.fast_retransmits;
  Alcotest.(check int) "retransmits exactly the three holes" 3
    r.Connection.retransmissions

let test_sack_multi_loss_no_timeout () =
  let r =
    Connection.run ~duration:30. (recovery_scenario Reno.Sack_recovery three_drops)
  in
  Alcotest.(check int) "no timeout" 0 r.Connection.timeouts;
  Alcotest.(check int) "retransmits exactly the three holes" 3
    r.Connection.retransmissions

let test_recovery_style_ordering () =
  (* Under random loss: SACK >= NewReno >= Reno in rate, and timeouts in
     the opposite order. *)
  let run recovery =
    let rng = Pftk_stats.Rng.create ~seed:14L () in
    let scenario =
      {
        lossless_scenario with
        Connection.data_loss = Some (Loss.bernoulli rng ~p:0.03);
        sender = { Reno.default_config with recovery };
      }
    in
    Connection.run ~seed:14L ~duration:300. scenario
  in
  let reno = run Reno.Reno_recovery in
  let newreno = run Reno.Newreno_recovery in
  let sack = run Reno.Sack_recovery in
  Alcotest.(check bool) "newreno >= reno rate" true
    (newreno.Connection.send_rate >= 0.95 *. reno.Connection.send_rate);
  Alcotest.(check bool) "sack > reno rate" true
    (sack.Connection.send_rate > reno.Connection.send_rate);
  Alcotest.(check bool) "sack fewer timeouts than reno" true
    (sack.Connection.timeouts < reno.Connection.timeouts)

let test_sack_receiver_blocks () =
  (* The SACK receiver reports the held runs. *)
  let sim = Sim.create () in
  let acks = ref [] in
  let receiver =
    Receiver.create ~sack:true ~sim ~send_ack:(fun a -> acks := a :: !acks) ()
  in
  Receiver.on_data receiver (data 0);
  Receiver.on_data receiver (data 1);
  (* Holes at 2 and 5: runs (3,4) and (6,6). *)
  Receiver.on_data receiver (data 3);
  Receiver.on_data receiver (data 4);
  Receiver.on_data receiver (data 6);
  match !acks with
  | { Segment.ack = 2; sacked = [ (3, 4); (6, 6) ] } :: _ -> ()
  | { Segment.ack; sacked } :: _ ->
      Alcotest.failf "unexpected ack %d with %d blocks" ack (List.length sacked)
  | [] -> Alcotest.fail "no acks"

let test_sack_blocks_capped_at_three () =
  let sim = Sim.create () in
  let acks = ref [] in
  let receiver =
    Receiver.create ~sack:true ~sim ~send_ack:(fun a -> acks := a :: !acks) ()
  in
  (* Four separate runs above the cumulative point. *)
  List.iter (fun seq -> Receiver.on_data receiver (data seq)) [ 2; 4; 6; 8 ];
  match !acks with
  | { Segment.sacked; _ } :: _ ->
      Alcotest.(check int) "at most three blocks" 3 (List.length sacked)
  | [] -> Alcotest.fail "no acks"

(* --- Round_sim --------------------------------------------------------------------- *)

let base_config =
  {
    Round_sim.default_config with
    Round_sim.rtt_jitter = 0.;
    wm = 1000;
  }

let test_round_sim_lossless_growth () =
  (* Without loss the window grows 1/b per round up to Wm. *)
  let config = { base_config with Round_sim.wm = 20; initial_window = 1. } in
  let samples = Round_sim.window_samples ~rounds:100 ~loss:Loss.none config in
  check_float "starts at 1" 1. samples.(0);
  check_float "grows 1/2 per round" 1.5 samples.(1);
  check_float "caps at Wm" 20. samples.(99)

let test_round_sim_counts_consistent () =
  let rng = Pftk_stats.Rng.create ~seed:5L () in
  let loss = Loss.round_correlated rng ~p:0.03 in
  let r = Round_sim.run ~duration:2000. ~loss base_config in
  Alcotest.(check bool) "sent >= delivered" true
    (r.Round_sim.packets_sent >= r.Round_sim.packets_delivered);
  Alcotest.(check int) "indication arithmetic"
    r.Round_sim.loss_indications
    (r.Round_sim.td_events + r.Round_sim.to_sequences);
  Alcotest.(check int) "backoff buckets sum to TO sequences"
    r.Round_sim.to_sequences
    (Array.fold_left ( + ) 0 r.Round_sim.to_by_backoff);
  Alcotest.(check bool) "duration covers request" true
    (r.Round_sim.duration >= 2000.)

let test_round_sim_matches_model () =
  (* The Monte-Carlo of the model process lands near eq. (32). *)
  let params = Params.make ~rtt:0.2 ~t0:2. ~wm:64 () in
  List.iter
    (fun p ->
      let rng = Pftk_stats.Rng.create ~seed:6L () in
      let loss = Loss.round_correlated rng ~p in
      let r =
        Round_sim.run ~duration:30_000. ~loss (Round_sim.config_of_params params)
      in
      close ~rel:0.3
        (Printf.sprintf "sim vs model at p=%g" p)
        (Full_model.send_rate params p)
        r.Round_sim.send_rate)
    [ 0.005; 0.02; 0.1 ]

let test_round_sim_throughput_below_send () =
  let rng = Pftk_stats.Rng.create ~seed:7L () in
  let loss = Loss.round_correlated rng ~p:0.05 in
  let r = Round_sim.run ~duration:5000. ~loss base_config in
  Alcotest.(check bool) "throughput <= send rate" true
    (r.Round_sim.throughput <= r.Round_sim.send_rate)

let test_round_sim_wm_respected () =
  let config = { base_config with Round_sim.wm = 7 } in
  let rng = Pftk_stats.Rng.create ~seed:8L () in
  let loss = Loss.round_correlated rng ~p:0.01 in
  let samples = Round_sim.window_samples ~rounds:500 ~loss config in
  Array.iter
    (fun w -> Alcotest.(check bool) "window <= Wm" true (w <= 7.))
    samples

let test_round_sim_deep_backoff () =
  (* Episodic loss with long blackouts must produce multi-timeout
     sequences. *)
  let rng = Pftk_stats.Rng.create ~seed:9L () in
  let loss = Loss.episodic rng ~p:0.02 ~burst_prob:0.8 ~mean_burst_rounds:3. in
  let r = Round_sim.run ~duration:20_000. ~loss base_config in
  let deep = Array.fold_left ( + ) 0 (Array.sub r.Round_sim.to_by_backoff 1 5) in
  Alcotest.(check bool) "multi-timeout sequences exist" true (deep > 0)

let test_round_sim_dup_threshold_shifts_mixture () =
  (* A lower dup-ACK threshold converts marginal TOs into TDs. *)
  let run threshold =
    let rng = Pftk_stats.Rng.create ~seed:10L () in
    let loss = Loss.round_correlated rng ~p:0.05 in
    let config = { base_config with Round_sim.dup_ack_threshold = threshold } in
    let r = Round_sim.run ~duration:10_000. ~loss config in
    float_of_int r.Round_sim.td_events
    /. float_of_int (max 1 r.Round_sim.loss_indications)
  in
  Alcotest.(check bool) "threshold 2 has more TDs" true (run 2 > run 3)

let test_round_sim_observed_p_below_nominal () =
  (* Loss indications aggregate bursts, so the indication frequency sits
     below the per-packet event rate. *)
  let rng = Pftk_stats.Rng.create ~seed:11L () in
  let loss = Loss.round_correlated rng ~p:0.08 in
  let r = Round_sim.run ~duration:10_000. ~loss base_config in
  Alcotest.(check bool) "observed p <= nominal" true
    (r.Round_sim.observed_p <= 0.08 +. 0.01)

let test_round_sim_deterministic () =
  let run () =
    let rng = Pftk_stats.Rng.create ~seed:12L () in
    let loss = Loss.round_correlated rng ~p:0.03 in
    (Round_sim.run ~seed:12L ~duration:1000. ~loss base_config).Round_sim.packets_sent
  in
  Alcotest.(check int) "reproducible" (run ()) (run ())

let test_round_sim_recorder_events () =
  let rng = Pftk_stats.Rng.create ~seed:13L () in
  let loss = Loss.round_correlated rng ~p:0.05 in
  let recorder = Pftk_trace.Recorder.create () in
  let r = Round_sim.run ~recorder ~duration:500. ~loss base_config in
  Alcotest.(check int) "every send recorded" r.Round_sim.packets_sent
    (Pftk_trace.Recorder.packets_sent recorder)

let test_config_of_params () =
  let params = Params.make ~b:1 ~rtt:0.3 ~t0:1.5 ~wm:9 () in
  let config = Round_sim.config_of_params params in
  Alcotest.(check int) "b" 1 config.Round_sim.b;
  Alcotest.(check int) "wm" 9 config.Round_sim.wm;
  check_float "t0" 1.5 config.Round_sim.t0;
  check_float "rtt" 0.3 config.Round_sim.rtt_mean

let test_round_sim_validation () =
  Alcotest.check_raises "bad duration"
    (Invalid_argument "Round_sim.run: duration must be positive") (fun () ->
      ignore (Round_sim.run ~duration:0. ~loss:Loss.none base_config))

let () =
  Alcotest.run "pftk_tcp"
    [
      ( "rto",
        [
          case "initial" test_rto_initial;
          case "first sample" test_rto_first_sample;
          case "ewma" test_rto_ewma;
          case "clamps" test_rto_clamps;
          case "converges" test_rto_converges;
          case "validation" test_rto_validation;
        ] );
      ( "receiver",
        [
          case "delayed ack" test_receiver_delayed_ack;
          case "delayed ack timer" test_receiver_delayed_ack_timer;
          case "out-of-order dup acks" test_receiver_out_of_order_dup_acks;
          case "hole fill" test_receiver_hole_fill;
          case "duplicate data" test_receiver_duplicate_data;
          case "counters" test_receiver_counters;
          case "ack_every 1" test_receiver_ack_every_1;
        ] );
      ( "connection",
        [
          case "lossless window-limited" test_connection_lossless_window_limited;
          case "lossless delivery" test_connection_delivers_everything_lossless;
          case "fast retransmit" test_connection_fast_retransmit_on_random_loss;
          slow_case "timeouts under heavy loss" test_connection_timeouts_under_heavy_loss;
          case "queue loss only" test_connection_queue_loss_only;
          slow_case "model agreement" test_connection_model_agreement;
          case "rtt samples" test_connection_rtt_samples_positive;
          case "deterministic" test_connection_deterministic;
          slow_case "dup-ack threshold 2" test_connection_dup_ack_threshold_2;
        ] );
      ( "reno-microscope",
        [
          case "exact fast retransmit" test_exact_fast_retransmit;
          case "dup-ack count" test_dup_ack_count_before_retransmit;
          case "cwnd halves" test_cwnd_halves_after_fast_retransmit;
          case "timeout when window tiny" test_timeout_when_window_too_small;
          slow_case "exponential backoff timing" test_exponential_backoff_timing;
          case "receiver window clamps flight" test_receiver_window_clamps_flight;
          case "delayed-ack ratio" test_delayed_ack_ratio;
        ] );
      ( "recovery-styles",
        [
          case "reno times out on multi-loss" test_reno_multi_loss_times_out;
          case "newreno recovers without timeout" test_newreno_multi_loss_no_timeout;
          case "sack recovers without timeout" test_sack_multi_loss_no_timeout;
          slow_case "style ordering under random loss" test_recovery_style_ordering;
          case "sack receiver blocks" test_sack_receiver_blocks;
          case "sack blocks capped" test_sack_blocks_capped_at_three;
        ] );
      ( "round-sim",
        [
          case "lossless growth" test_round_sim_lossless_growth;
          case "count consistency" test_round_sim_counts_consistent;
          slow_case "matches model" test_round_sim_matches_model;
          case "throughput <= send" test_round_sim_throughput_below_send;
          case "Wm respected" test_round_sim_wm_respected;
          case "deep backoff" test_round_sim_deep_backoff;
          case "dup threshold mixture" test_round_sim_dup_threshold_shifts_mixture;
          case "observed p below nominal" test_round_sim_observed_p_below_nominal;
          case "deterministic" test_round_sim_deterministic;
          case "recorder events" test_round_sim_recorder_events;
          case "config_of_params" test_config_of_params;
          case "validation" test_round_sim_validation;
        ] );
    ]
