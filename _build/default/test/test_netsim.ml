(* Tests for pftk_netsim: event queue semantics, queue disciplines, link
   timing/drop behavior, duplex paths. *)

module Sim = Pftk_netsim.Sim
module Queue_discipline = Pftk_netsim.Queue_discipline
module Link = Pftk_netsim.Link
module Path = Pftk_netsim.Path

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let case name f = Alcotest.test_case name `Quick f
let rng () = Pftk_stats.Rng.create ~seed:1L ()

(* --- Sim -------------------------------------------------------------------- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Sim.schedule sim ~delay:3. (note "c"));
  ignore (Sim.schedule sim ~delay:1. (note "a"));
  ignore (Sim.schedule sim ~delay:2. (note "b"));
  Sim.run sim;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log)

let test_sim_fifo_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.schedule sim ~delay:1. (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO at equal times" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_sim_clock_advances () =
  let sim = Sim.create () in
  let seen = ref 0. in
  ignore (Sim.schedule sim ~delay:2.5 (fun () -> seen := Sim.now sim));
  Sim.run sim;
  check_float "clock at event time" 2.5 !seen;
  check_float "clock after run" 2.5 (Sim.now sim)

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let finished = ref 0. in
  ignore
    (Sim.schedule sim ~delay:1. (fun () ->
         ignore (Sim.schedule sim ~delay:1. (fun () -> finished := Sim.now sim))));
  Sim.run sim;
  check_float "nested event at t=2" 2. !finished

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let e = Sim.schedule sim ~delay:1. (fun () -> fired := true) in
  Sim.cancel e;
  Alcotest.(check bool) "marked cancelled" true (Sim.cancelled e);
  Sim.run sim;
  Alcotest.(check bool) "did not fire" false !fired

let test_sim_run_until () =
  let sim = Sim.create () in
  let fired = ref [] in
  ignore (Sim.schedule sim ~delay:1. (fun () -> fired := 1 :: !fired));
  ignore (Sim.schedule sim ~delay:5. (fun () -> fired := 5 :: !fired));
  Sim.run ~until:3. sim;
  Alcotest.(check (list int)) "only early event" [ 1 ] !fired;
  check_float "clock parked at horizon" 3. (Sim.now sim);
  Sim.run sim;
  Alcotest.(check (list int)) "late event eventually fires" [ 5; 1 ] !fired

let test_sim_step () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:1. ignore);
  Alcotest.(check bool) "one step" true (Sim.step sim);
  Alcotest.(check bool) "exhausted" false (Sim.step sim)

let test_sim_pending () =
  let sim = Sim.create () in
  let e = Sim.schedule sim ~delay:1. ignore in
  ignore (Sim.schedule sim ~delay:2. ignore);
  Alcotest.(check int) "two pending" 2 (Sim.pending sim);
  Sim.cancel e;
  Alcotest.(check int) "one pending after cancel" 1 (Sim.pending sim)

let test_sim_past_raises () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:1. ignore);
  Sim.run sim;
  Alcotest.check_raises "past time"
    (Invalid_argument "Sim.schedule_at: time in the past") (fun () ->
      ignore (Sim.schedule_at sim ~time:0.5 ignore));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.schedule: negative delay") (fun () ->
      ignore (Sim.schedule sim ~delay:(-1.) ignore))

let test_sim_run_until_skips_cancelled_head () =
  (* Regression: a cancelled event at the heap head must not let run-until
     dispatch a live event beyond the horizon (which would move the clock
     past it and then snap backwards). *)
  let sim = Sim.create () in
  let fired_at = ref [] in
  let early = Sim.schedule sim ~delay:1. (fun () -> fired_at := 1. :: !fired_at) in
  ignore (Sim.schedule sim ~delay:50. (fun () -> fired_at := 50. :: !fired_at));
  Sim.cancel early;
  Sim.run ~until:10. sim;
  Alcotest.(check (list (float 1e-9))) "nothing fired" [] !fired_at;
  check_float "clock parked at horizon" 10. (Sim.now sim);
  (* And the clock never goes backwards on subsequent scheduling. *)
  ignore (Sim.schedule sim ~delay:1. ignore);
  Sim.run ~until:12. sim;
  check_float "still monotone" 12. (Sim.now sim)

let test_sim_many_events () =
  (* Stress the heap beyond its initial capacity with a reverse-sorted load. *)
  let sim = Sim.create () in
  let count = ref 0 in
  let last = ref neg_infinity in
  for i = 1000 downto 1 do
    ignore
      (Sim.schedule sim ~delay:(float_of_int i) (fun () ->
           incr count;
           Alcotest.(check bool) "monotone dispatch" true (Sim.now sim >= !last);
           last := Sim.now sim))
  done;
  Sim.run sim;
  Alcotest.(check int) "all fired" 1000 !count

(* --- Queue disciplines --------------------------------------------------------- *)

let test_drop_tail () =
  let d = Queue_discipline.drop_tail ~capacity:2 in
  let st = Queue_discipline.init d in
  let rng = rng () in
  Alcotest.(check bool) "admit 0" true
    (Queue_discipline.admit d st ~rng ~queue_length:0);
  Alcotest.(check bool) "admit 1" true
    (Queue_discipline.admit d st ~rng ~queue_length:1);
  Alcotest.(check bool) "drop at capacity" false
    (Queue_discipline.admit d st ~rng ~queue_length:2)

let test_red_below_min () =
  let d =
    Queue_discipline.red ~capacity:100 ~min_threshold:5. ~max_threshold:15. ()
  in
  let st = Queue_discipline.init d in
  let rng = rng () in
  for _ = 1 to 50 do
    Alcotest.(check bool) "no drop below min threshold" true
      (Queue_discipline.admit d st ~rng ~queue_length:1)
  done

let test_red_above_max () =
  let d =
    Queue_discipline.red ~weight:1. ~capacity:100 ~min_threshold:2.
      ~max_threshold:10. ()
  in
  let st = Queue_discipline.init d in
  let rng = rng () in
  (* weight 1 makes the average jump straight to the sample. *)
  Alcotest.(check bool) "drop above max threshold" false
    (Queue_discipline.admit d st ~rng ~queue_length:50)

let test_red_gentle_region_drops_sometimes () =
  let d =
    Queue_discipline.red ~weight:1. ~max_probability:0.5 ~capacity:100
      ~min_threshold:2. ~max_threshold:20. ()
  in
  let st = Queue_discipline.init d in
  let rng = rng () in
  let drops = ref 0 in
  for _ = 1 to 1000 do
    if not (Queue_discipline.admit d st ~rng ~queue_length:11) then incr drops
  done;
  Alcotest.(check bool) "some but not all dropped" true
    (!drops > 50 && !drops < 950)

let test_red_average_tracks () =
  let d =
    Queue_discipline.red ~weight:0.5 ~capacity:10 ~min_threshold:2.
      ~max_threshold:8. ()
  in
  let st = Queue_discipline.init d in
  let rng = rng () in
  ignore (Queue_discipline.admit d st ~rng ~queue_length:4);
  check_float "avg after one sample" 2. (Queue_discipline.average_queue st)

let test_red_validation () =
  Alcotest.check_raises "bad thresholds"
    (Invalid_argument "Queue_discipline.red: need 0 <= min_th < max_th")
    (fun () ->
      ignore
        (Queue_discipline.red ~capacity:10 ~min_threshold:5. ~max_threshold:5. ()))

(* --- Link ------------------------------------------------------------------------ *)

let test_link_latency () =
  (* 1000-byte packet at 10 kB/s + 0.1 s propagation = 0.2 s. *)
  let sim = Sim.create () in
  let arrived = ref 0. in
  let link =
    Link.create ~sim ~rng:(rng ()) ~bandwidth:10_000. ~delay:0.1
      ~deliver:(fun () -> arrived := Sim.now sim)
      ()
  in
  Alcotest.(check bool) "accepted" true (Link.send link ~size:1000 ());
  Sim.run sim;
  check_float "serialization + propagation" 0.2 !arrived

let test_link_fifo () =
  let sim = Sim.create () in
  let out = ref [] in
  let link =
    Link.create ~sim ~rng:(rng ()) ~bandwidth:1000. ~delay:0.01
      ~deliver:(fun i -> out := i :: !out)
      ()
  in
  for i = 1 to 5 do
    ignore (Link.send link ~size:100 i)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO delivery" [ 1; 2; 3; 4; 5 ] (List.rev !out)

let test_link_queue_overflow () =
  let sim = Sim.create () in
  let delivered = ref 0 in
  let link =
    Link.create
      ~discipline:(Queue_discipline.drop_tail ~capacity:2)
      ~sim ~rng:(rng ()) ~bandwidth:1000. ~delay:0.
      ~deliver:(fun () -> incr delivered)
      ()
  in
  let accepted = ref 0 in
  for _ = 1 to 10 do
    if Link.send link ~size:100 () then incr accepted
  done;
  Sim.run sim;
  Alcotest.(check int) "accepted = delivered" !accepted !delivered;
  let stats = Link.stats link in
  Alcotest.(check int) "offered" 10 stats.Link.offered;
  Alcotest.(check int) "drops accounted" 10
    (stats.Link.delivered + stats.Link.dropped_queue);
  Alcotest.(check bool) "some dropped" true (stats.Link.dropped_queue > 0)

let test_link_serialization_spacing () =
  (* Packets leave one serialization time apart. *)
  let sim = Sim.create () in
  let times = ref [] in
  let link =
    Link.create ~sim ~rng:(rng ()) ~bandwidth:1000. ~delay:0.
      ~deliver:(fun () -> times := Sim.now sim :: !times)
      ()
  in
  ignore (Link.send link ~size:100 ());
  ignore (Link.send link ~size:100 ());
  Sim.run sim;
  match List.rev !times with
  | [ t1; t2 ] ->
      check_float "first at 0.1" 0.1 t1;
      check_float "second at 0.2" 0.2 t2
  | _ -> Alcotest.fail "expected two deliveries"

let test_link_random_loss () =
  let sim = Sim.create () in
  let delivered = ref 0 in
  let link =
    Link.create
      ~random_loss:(fun () -> true)
      ~sim ~rng:(rng ()) ~bandwidth:1000. ~delay:0.
      ~deliver:(fun () -> incr delivered)
      ()
  in
  Alcotest.(check bool) "rejected" false (Link.send link ~size:100 ());
  Sim.run sim;
  Alcotest.(check int) "nothing delivered" 0 !delivered;
  Alcotest.(check int) "counted as random drop" 1
    (Link.stats link).Link.dropped_random

let test_link_busy_time () =
  let sim = Sim.create () in
  let link =
    Link.create ~sim ~rng:(rng ()) ~bandwidth:1000. ~delay:0.5 ~deliver:ignore ()
  in
  ignore (Link.send link ~size:300 ());
  Sim.run sim;
  check_float "busy time" 0.3 (Link.busy_time link)

let test_link_bytes_delivered () =
  let sim = Sim.create () in
  let link =
    Link.create ~sim ~rng:(rng ()) ~bandwidth:1e6 ~delay:0. ~deliver:ignore ()
  in
  ignore (Link.send link ~size:100 ());
  ignore (Link.send link ~size:200 ());
  Sim.run sim;
  Alcotest.(check int) "bytes" 300 (Link.stats link).Link.bytes_delivered

let test_link_max_queue () =
  let sim = Sim.create () in
  let link =
    Link.create ~sim ~rng:(rng ()) ~bandwidth:1000. ~delay:0. ~deliver:ignore ()
  in
  for _ = 1 to 5 do
    ignore (Link.send link ~size:100 ())
  done;
  Sim.run sim;
  Alcotest.(check int) "high-water mark" 5 (Link.stats link).Link.max_queue

let test_link_validation () =
  let sim = Sim.create () in
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Link.create: bandwidth must be positive") (fun () ->
      ignore
        (Link.create ~sim ~rng:(rng ()) ~bandwidth:0. ~delay:0. ~deliver:ignore ()))

(* --- Cross traffic ------------------------------------------------------------------ *)

module Cross_traffic = Pftk_netsim.Cross_traffic

let test_cross_traffic_mean_rate () =
  (* Long-run emission matches rate * duty cycle. *)
  let sim = Sim.create () in
  let count = ref 0 in
  let config =
    { Cross_traffic.default with Cross_traffic.rate = 100.; mean_on = 1.; mean_off = 3. }
  in
  let source =
    Cross_traffic.start ~config ~sim ~rng:(rng ()) ~send:(fun ~size ->
        ignore size;
        incr count)
      ()
  in
  Sim.run ~until:4000. sim;
  let measured = float_of_int !count /. 4000. in
  Alcotest.(check bool)
    (Printf.sprintf "within 10%% of %g (got %g)" (Cross_traffic.mean_rate config) measured)
    true
    (Float.abs (measured -. Cross_traffic.mean_rate config)
     /. Cross_traffic.mean_rate config
    < 0.1);
  Alcotest.(check int) "counter agrees" !count (Cross_traffic.packets_sent source)

let test_cross_traffic_bursty () =
  (* During ON the instantaneous rate far exceeds the long-run mean:
     count packets in 100-ms slots and look at the busiest slot. *)
  let sim = Sim.create () in
  let slots = Array.make 2000 0 in
  let config =
    { Cross_traffic.default with Cross_traffic.rate = 500.; mean_on = 0.5; mean_off = 4.5 }
  in
  ignore
    (Cross_traffic.start ~config ~sim ~rng:(rng ()) ~send:(fun ~size ->
         ignore size;
         let slot = int_of_float (Sim.now sim /. 0.1) in
         if slot < 2000 then slots.(slot) <- slots.(slot) + 1)
       ());
  Sim.run ~until:200. sim;
  let busiest = Array.fold_left max 0 slots in
  (* 500 pkt/s = ~50 per busy slot; long-run mean = 50 pkt/s = 5 per slot. *)
  Alcotest.(check bool) "bursts visible" true (busiest > 25)

let test_cross_traffic_pareto_heavy_tail () =
  let config =
    { Cross_traffic.default with Cross_traffic.pareto_shape = Some 1.2 }
  in
  (* Just exercise the sampler for crashes/NaNs over a long run. *)
  let sim = Sim.create () in
  let count = ref 0 in
  ignore
    (Cross_traffic.start ~config ~sim ~rng:(rng ()) ~send:(fun ~size ->
         ignore size;
         incr count)
       ());
  Sim.run ~until:500. sim;
  Alcotest.(check bool) "emitted packets" true (!count > 100)

let test_cross_traffic_validation () =
  Alcotest.check_raises "bad shape"
    (Invalid_argument "Cross_traffic: pareto shape must exceed 1") (fun () ->
      ignore
        (Cross_traffic.start
           ~config:{ Cross_traffic.default with Cross_traffic.pareto_shape = Some 1. }
           ~sim:(Sim.create ()) ~rng:(rng ()) ~send:(fun ~size -> ignore size)
           ()))

(* --- Path ------------------------------------------------------------------------- *)

let test_path_roundtrip () =
  let sim = Sim.create () in
  let got_data = ref false and got_ack = ref false in
  let path =
    Path.symmetric ~sim ~rng:(rng ()) ~bandwidth:1e6 ~one_way_delay:0.05
      ~deliver_data:(fun () -> got_data := true)
      ~deliver_ack:(fun () -> got_ack := true)
      ()
  in
  ignore (Link.send path.Path.forward ~size:100 ());
  ignore (Link.send path.Path.reverse ~size:40 ());
  Sim.run sim;
  Alcotest.(check bool) "data" true !got_data;
  Alcotest.(check bool) "ack" true !got_ack;
  check_float "base rtt" 0.1 (Path.base_rtt path)

let test_path_asymmetric () =
  let sim = Sim.create () in
  let path =
    Path.create ~sim ~rng:(rng ()) ~forward_bandwidth:1e6 ~reverse_bandwidth:1e4
      ~forward_delay:0.01 ~reverse_delay:0.2 ~deliver_data:ignore
      ~deliver_ack:ignore ()
  in
  check_float "asymmetric base rtt" 0.21 (Path.base_rtt path)

let () =
  Alcotest.run "pftk_netsim"
    [
      ( "sim",
        [
          case "event ordering" test_sim_ordering;
          case "FIFO tie-break" test_sim_fifo_ties;
          case "clock advances" test_sim_clock_advances;
          case "nested scheduling" test_sim_nested_scheduling;
          case "cancel" test_sim_cancel;
          case "run until" test_sim_run_until;
          case "step" test_sim_step;
          case "pending" test_sim_pending;
          case "past raises" test_sim_past_raises;
          case "cancelled head at horizon" test_sim_run_until_skips_cancelled_head;
          case "heap stress" test_sim_many_events;
        ] );
      ( "queue-discipline",
        [
          case "drop tail" test_drop_tail;
          case "RED below min" test_red_below_min;
          case "RED above max" test_red_above_max;
          case "RED gentle region" test_red_gentle_region_drops_sometimes;
          case "RED average" test_red_average_tracks;
          case "RED validation" test_red_validation;
        ] );
      ( "link",
        [
          case "latency" test_link_latency;
          case "FIFO" test_link_fifo;
          case "queue overflow" test_link_queue_overflow;
          case "serialization spacing" test_link_serialization_spacing;
          case "random loss hook" test_link_random_loss;
          case "busy time" test_link_busy_time;
          case "bytes delivered" test_link_bytes_delivered;
          case "max queue" test_link_max_queue;
          case "validation" test_link_validation;
        ] );
      ( "cross-traffic",
        [
          case "mean rate" test_cross_traffic_mean_rate;
          case "burstiness" test_cross_traffic_bursty;
          case "pareto tail" test_cross_traffic_pareto_heavy_tail;
          case "validation" test_cross_traffic_validation;
        ] );
      ( "path",
        [
          case "roundtrip" test_path_roundtrip;
          case "asymmetric" test_path_asymmetric;
        ] );
    ]
