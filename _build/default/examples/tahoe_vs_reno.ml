(* Tahoe vs Reno vs the model's idealized process.

   Section IV notes that the SunOS senders in the measurement set ran a
   Tahoe-derived stack (no fast recovery: every loss indication restarts
   from a window of one), yet the Reno model still fit.  This example
   quantifies how much that distinction matters across loss rates by
   running the round-based simulator in its three flavors against
   eq. (32).

   Run with:  dune exec examples/tahoe_vs_reno.exe *)

open Pftk_core
module Round_sim = Pftk_tcp.Round_sim
module Loss = Pftk_loss.Loss_process

let params = Params.make ~rtt:0.2 ~t0:1.5 ~wm:32 ()

let simulate flavor p seed =
  let rng = Pftk_stats.Rng.create ~seed () in
  let loss = Loss.round_correlated rng ~p in
  let config = { (Round_sim.config_of_params params) with Round_sim.flavor } in
  let r = Round_sim.run ~seed ~duration:30_000. ~loss config in
  r.Round_sim.send_rate

let () =
  Format.printf "Send rate (pkt/s), %a@.@." Params.pp params;
  Format.printf "%-8s %10s %12s %12s %10s %10s@." "p" "model" "model-reno"
    "reno+ss" "tahoe" "tahoe/reno";
  List.iter
    (fun p ->
      let model = Full_model.send_rate params p in
      let ideal = simulate Round_sim.Model_reno p 1L in
      let reno = simulate Round_sim.Reno_slow_start p 2L in
      let tahoe = simulate Round_sim.Tahoe p 3L in
      Format.printf "%-8.4f %10.2f %12.2f %12.2f %10.2f %10.2f@." p model
        ideal reno tahoe (tahoe /. reno))
    [ 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2 ];
  Format.printf
    "@.Reading: Tahoe pays a slow-start ramp after every TD indication, so \
     it falls@.below Reno as TDs become common (moderate p with decent \
     windows); at high p@.almost all indications are timeouts anyway and \
     the three flavors converge --@.which is why the Reno model fit the \
     Tahoe-derived SunOS senders in the paper.@."
