(* Capacity planning for bulk transfers (the FTP workload of the paper's
   abstract): given candidate paths with known loss and delay, how long
   will a 1-GB transfer take, and is the bottleneck the network or the
   receiver's advertised window?

   The throughput model of Sec. V is the right tool: transfer time depends
   on what the receiver *gets*, not on what the sender emits.
   Run with:  dune exec examples/capacity_planning.exe *)

open Pftk_core

type candidate = {
  name : string;
  rtt : float;
  t0 : float;
  p : float;
  wm : int;  (** packets, from the receiver's socket buffer *)
}

let candidates =
  [
    { name = "metro fiber"; rtt = 0.012; t0 = 0.25; p = 0.0005; wm = 44 };
    { name = "national backbone"; rtt = 0.070; t0 = 0.60; p = 0.004; wm = 44 };
    { name = "transatlantic"; rtt = 0.180; t0 = 1.40; p = 0.015; wm = 44 };
    { name = "satellite"; rtt = 0.560; t0 = 3.00; p = 0.010; wm = 44 };
    { name = "congested peer"; rtt = 0.120; t0 = 1.00; p = 0.080; wm = 44 };
  ]

let gigabyte = 1_000_000_000.
let mss = 1460

let () =
  Format.printf "1-GB bulk transfer over candidate paths (MSS %d B)@.@." mss;
  Format.printf "%-18s %10s %10s %10s %12s %s@." "path" "B pkt/s" "T pkt/s"
    "MB/s" "1 GB in" "binding constraint";
  List.iter
    (fun c ->
      let params = Params.make ~rtt:c.rtt ~t0:c.t0 ~wm:c.wm () in
      let send = Full_model.send_rate params c.p in
      let recv = Throughput.throughput params c.p in
      let bytes_per_s = Inverse.rate_in_bytes ~mss recv in
      let seconds = gigabyte /. bytes_per_s in
      let binding =
        if Full_model.window_limited params c.p then
          Printf.sprintf "receiver window (Wm=%d)" c.wm
        else "network loss"
      in
      let human =
        if seconds < 120. then Printf.sprintf "%.0f s" seconds
        else if seconds < 7200. then Printf.sprintf "%.1f min" (seconds /. 60.)
        else Printf.sprintf "%.1f h" (seconds /. 3600.)
      in
      Format.printf "%-18s %10.1f %10.1f %10.2f %12s %s@." c.name send recv
        (bytes_per_s /. 1e6) human binding)
    candidates;

  (* Would a bigger receiver buffer help the satellite path?  Sweep Wm. *)
  Format.printf "@.Satellite path: receiver-window sweep at p = 0.01@.";
  Format.printf "%-6s %12s %s@." "Wm" "T pkt/s" "window-limited?";
  List.iter
    (fun wm ->
      let params = Params.make ~rtt:0.56 ~t0:3.0 ~wm () in
      Format.printf "%-6d %12.1f %b@." wm
        (Throughput.throughput params 0.01)
        (Full_model.window_limited params 0.01))
    [ 8; 16; 32; 64; 128; 256 ]
