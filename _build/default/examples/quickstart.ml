(* Quickstart: evaluate the PFTK send-rate models on one path.

   Run with:  dune exec examples/quickstart.exe

   The scenario is a transatlantic path like the paper's pif-manic pair:
   257 ms RTT, 1.45 s timeouts, a 33-packet receiver window. *)

open Pftk_core

let () =
  let params = Params.make ~rtt:0.257 ~t0:1.454 ~wm:33 () in
  Format.printf "Path: %a@.@." Params.pp params;

  (* The full model (eq. 32) across loss rates, against the TD-only
     baseline it improves on. *)
  Format.printf "%-8s %12s %12s %12s@." "p" "full" "approximate" "TD-only";
  List.iter
    (fun p ->
      Format.printf "%-8g %12.2f %12.2f %12.2f@." p
        (Full_model.send_rate params p)
        (Approx_model.send_rate params p)
        (Tdonly.send_rate ~rtt:params.rtt ~b:params.b p))
    [ 0.001; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2 ];

  (* Throughput (what the receiver gets) vs send rate (what the sender
     emits), Sec. V. *)
  let p = 0.05 in
  Format.printf "@.At p = %g: B = %.2f pkt/s, T = %.2f pkt/s (%.1f%% delivered)@."
    p
    (Full_model.send_rate params p)
    (Throughput.throughput params p)
    (100. *. Throughput.delivery_ratio params p);

  (* Inversion: what loss rate would cap this path at 10 pkt/s? *)
  (match Inverse.loss_budget params ~rate:10. with
  | Some budget -> Format.printf "Loss budget for 10 pkt/s: p = %.4f@." budget
  | None -> Format.printf "10 pkt/s is outside the achievable range@.");

  (* In bytes, for a 1460-byte MSS. *)
  let rate = Full_model.send_rate params 0.01 in
  Format.printf "At p = 0.01 that is %.0f kB/s of goodput headroom@."
    (Inverse.rate_in_bytes ~mss:1460 rate /. 1000.)
