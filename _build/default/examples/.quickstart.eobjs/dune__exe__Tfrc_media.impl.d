examples/tfrc_media.ml: Format Inverse List Params Pftk_core Pftk_loss Pftk_stats Pftk_tcp
