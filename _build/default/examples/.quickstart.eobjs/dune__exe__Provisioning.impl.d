examples/provisioning.ml: Fixed_point Format Int64 List Pftk_core Pftk_tcp Printf
