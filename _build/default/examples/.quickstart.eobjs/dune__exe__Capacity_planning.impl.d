examples/capacity_planning.ml: Format Full_model Inverse List Params Pftk_core Printf Throughput
