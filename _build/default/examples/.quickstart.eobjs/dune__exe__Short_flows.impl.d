examples/short_flows.ml: Format Full_model List Params Pftk_core Printf Short_flow
