examples/quickstart.ml: Approx_model Format Full_model Inverse List Params Pftk_core Tdonly Throughput
