examples/recovery_styles.ml: Array Format List Pftk_loss Pftk_netsim Pftk_stats Pftk_tcp
