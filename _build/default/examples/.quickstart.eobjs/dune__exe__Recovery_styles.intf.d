examples/recovery_styles.mli:
