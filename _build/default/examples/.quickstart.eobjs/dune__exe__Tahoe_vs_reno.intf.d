examples/tahoe_vs_reno.mli:
