examples/tfrc_media.mli:
