examples/tahoe_vs_reno.ml: Format Full_model List Params Pftk_core Pftk_loss Pftk_stats Pftk_tcp
