examples/model_validation.ml: Approx_model Array Format Full_model Int64 Markov Params Pftk_core Pftk_loss Pftk_stats Pftk_tcp Sweep Tdonly
