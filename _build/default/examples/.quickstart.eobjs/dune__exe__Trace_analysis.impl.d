examples/trace_analysis.ml: Float Format Full_model List Params Pftk_core Pftk_loss Pftk_netsim Pftk_stats Pftk_tcp Pftk_trace
