examples/quickstart.mli:
