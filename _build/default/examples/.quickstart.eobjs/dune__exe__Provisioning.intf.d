examples/provisioning.mli:
