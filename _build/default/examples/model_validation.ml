(* Model validation in miniature: all four independent evaluations of the
   same TCP behavior, side by side across loss rates —

     1. the closed-form full model (eq. 32),
     2. its one-line approximation (eq. 33),
     3. the numerically-solved Markov chain,
     4. a Monte-Carlo of the model's stochastic process (round simulator).

   If the derivation is right, all four columns agree in shape; the
   square-root TD-only law is printed as the contrast.
   Run with:  dune exec examples/model_validation.exe *)

open Pftk_core

let () =
  let params = Params.make ~rtt:0.47 ~t0:3.2 ~wm:12 () in
  Format.printf "Parameters: %a (Fig. 12's setting)@.@." Params.pp params;
  Format.printf "%-8s %8s %8s %8s %8s %10s@." "p" "full" "approx" "markov"
    "simul" "TD-only";
  let grid = Sweep.logspace ~lo:2e-3 ~hi:0.4 ~n:12 in
  Array.iteri
    (fun i p ->
      let full = Full_model.send_rate params p in
      let approx = Approx_model.send_rate params p in
      let markov = Markov.send_rate (Markov.solve params p) in
      let rng = Pftk_stats.Rng.create ~seed:(Int64.of_int (100 + i)) () in
      let loss = Pftk_loss.Loss_process.round_correlated rng ~p in
      let sim =
        Pftk_tcp.Round_sim.run ~duration:20_000. ~loss
          (Pftk_tcp.Round_sim.config_of_params params)
      in
      Format.printf "%-8.4f %8.2f %8.2f %8.2f %8.2f %10.2f@." p full approx
        markov sim.Pftk_tcp.Round_sim.send_rate
        (Tdonly.send_rate ~rtt:params.rtt ~b:params.b p))
    grid;
  Format.printf
    "@.The TD-only column ignores both timeouts and the receiver window;@.";
  Format.printf
    "note how far it drifts above the other four as p grows -- the paper's@.";
  Format.printf "central observation.@."
