(* Trace analysis: the paper's measurement methodology end to end.

   A packet-level TCP Reno connection runs over a simulated lossy path
   (tcpdump stand-in: the sender records every segment and ACK).  The
   trace analyzer then infers loss indications, classifies TD vs TO with
   backoff depth, estimates p, and applies Karn's algorithm for RTT —
   after which the model predicts the send rate from those measurements
   alone, exactly the Fig. 7 validation loop.

   Run with:  dune exec examples/trace_analysis.exe *)

module Connection = Pftk_tcp.Connection
module Analyzer = Pftk_trace.Analyzer
module Intervals = Pftk_trace.Intervals
open Pftk_core

let () =
  let rng = Pftk_stats.Rng.create ~seed:3L () in
  let scenario =
    {
      Connection.default_scenario with
      Connection.forward_bandwidth = 500_000.;
      reverse_bandwidth = 500_000.;
      forward_delay = 0.06;
      reverse_delay = 0.06;
      buffer = Pftk_netsim.Queue_discipline.drop_tail ~capacity:24;
      data_loss = Some (Pftk_loss.Loss_process.bernoulli rng ~p:0.015);
    }
  in
  let duration = 1800. in
  let result = Connection.run ~seed:3L ~duration scenario in

  Format.printf "Simulated bulk transfer: %.0f s, %d packets sent, %d delivered@."
    duration result.Connection.packets_sent result.Connection.segments_delivered;
  Format.printf "Sender counters: %d retransmissions, %d timeouts, %d fast rexmits@.@."
    result.Connection.retransmissions result.Connection.timeouts
    result.Connection.fast_retransmits;

  (* What the analysis programs recover from the packet trace alone. *)
  let inferred = Analyzer.summarize ~mode:`Infer result.Connection.recorder in
  let truth = Analyzer.summarize ~mode:`Ground_truth result.Connection.recorder in
  Format.printf "Trace inference:  %a@." Analyzer.pp_summary inferred;
  Format.printf "Ground truth:     %a@.@." Analyzer.pp_summary truth;

  (* Feed the measured quantities back into the model. *)
  let p = inferred.Analyzer.observed_p in
  let params =
    Params.make ~rtt:inferred.Analyzer.avg_rtt
      ~t0:(Float.max 0.2 inferred.Analyzer.avg_t0)
      ~wm:scenario.Connection.sender.Pftk_tcp.Reno.wm ()
  in
  Format.printf "Model at measured (p=%.4f, %a):@." p Params.pp params;
  Format.printf "  predicted %.2f pkt/s, measured %.2f pkt/s (ratio %.2f)@.@."
    (Full_model.send_rate params p)
    result.Connection.send_rate
    (Full_model.send_rate params p /. result.Connection.send_rate);

  (* Per-interval scatter, like one Fig. 7 panel. *)
  Format.printf "100-s intervals (p, packets, class):@.";
  Intervals.split ~mode:`Infer ~width:100. result.Connection.recorder
  |> List.iter (fun bin ->
         Format.printf "  [%4.0f,%4.0f) %-6.4f %6d %s@." bin.Intervals.start
           bin.Intervals.stop bin.Intervals.observed_p bin.Intervals.packets_sent
           (Intervals.classification_label bin.Intervals.classification))
