(* TCP-friendly media streaming: the application the paper's introduction
   motivates.  A media server cannot use TCP (it needs smooth pacing), but
   it must not outcompete TCP flows sharing the path.  The fix that became
   TFRC: measure loss and RTT, and pace at the rate the PFTK equation says
   a TCP flow would achieve under the same conditions.

   This example simulates a day of shifting network weather on one path.
   Each epoch the controller re-measures (p, RTT) with an EWMA and re-pacing
   follows eq. (33).  Run with:  dune exec examples/tfrc_media.exe *)

open Pftk_core

type epoch = { hours : string; p : float; rtt : float }

(* Network weather over a business day: quiet overnight, congested at
   mid-morning and early evening. *)
let day =
  [
    { hours = "00-06"; p = 0.002; rtt = 0.080 };
    { hours = "06-09"; p = 0.010; rtt = 0.110 };
    { hours = "09-12"; p = 0.035; rtt = 0.160 };
    { hours = "12-14"; p = 0.020; rtt = 0.140 };
    { hours = "14-17"; p = 0.030; rtt = 0.150 };
    { hours = "17-20"; p = 0.060; rtt = 0.190 };
    { hours = "20-24"; p = 0.008; rtt = 0.100 };
  ]

(* The controller smooths its measurements like TFRC does, so the paced
   rate does not whipsaw at epoch boundaries. *)
let ewma ~weight previous sample = ((1. -. weight) *. previous) +. (weight *. sample)

let mss = 1200 (* media datagram payload, bytes *)

let () =
  Format.printf
    "TCP-friendly pacing for a media stream (MSS %d B, eq. 33)@.@." mss;
  Format.printf "%-6s %8s %8s | %10s %12s %10s@." "hours" "raw p" "raw rtt"
    "smoothed p" "fair pkt/s" "fair kbit/s";
  let smoothed_p = ref (List.hd day).p in
  let smoothed_rtt = ref (List.hd day).rtt in
  List.iter
    (fun { hours; p; rtt } ->
      smoothed_p := ewma ~weight:0.5 !smoothed_p p;
      smoothed_rtt := ewma ~weight:0.5 !smoothed_rtt rtt;
      (* TFRC sets T0 = 4 * RTT when it has no timeout measurement. *)
      let params =
        Params.make ~rtt:!smoothed_rtt ~t0:(4. *. !smoothed_rtt) ~wm:64 ()
      in
      let fair = Inverse.tcp_friendly_rate_simple params !smoothed_p in
      Format.printf "%-6s %8.3f %8.3f | %10.4f %12.1f %10.0f@." hours p rtt
        !smoothed_p fair
        (Inverse.rate_in_bytes ~mss fair *. 8. /. 1000.))
    day;
  (* Sanity: a competing simulated TCP flow under the evening conditions
     gets a comparable share, so the stream is genuinely TCP-friendly. *)
  let evening = List.nth day 5 in
  let params = Params.make ~rtt:evening.rtt ~t0:(4. *. evening.rtt) ~wm:64 () in
  let rng = Pftk_stats.Rng.create ~seed:9L () in
  let loss = Pftk_loss.Loss_process.round_correlated rng ~p:evening.p in
  let sim =
    Pftk_tcp.Round_sim.run ~duration:3600. ~loss
      (Pftk_tcp.Round_sim.config_of_params params)
  in
  Format.printf
    "@.Check vs a simulated TCP flow at evening conditions: TCP got %.1f \
     pkt/s, the stream paces at %.1f pkt/s@."
    sim.Pftk_tcp.Round_sim.send_rate
    (Inverse.tcp_friendly_rate_simple params evening.p)
