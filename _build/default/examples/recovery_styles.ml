(* Loss recovery styles: Reno vs NewReno vs SACK, at packet level.

   The paper models classic Reno and cites the Fall-Floyd simulation study
   comparing Tahoe/Reno/SACK as [3]; this example reproduces that study's
   signature result on our packet-level stack.  The telling case is
   several losses inside one window: classic Reno exits fast recovery on
   the first partial ACK and stalls into a timeout; NewReno retransmits
   one hole per RTT; SACK repairs all holes within the first recovery.

   Run with:  dune exec examples/recovery_styles.exe *)

module Connection = Pftk_tcp.Connection
module Reno = Pftk_tcp.Reno
module Loss = Pftk_loss.Loss_process

let base =
  {
    Connection.default_scenario with
    Connection.forward_bandwidth = 1_250_000.;
    reverse_bandwidth = 1_250_000.;
    forward_delay = 0.05;
    reverse_delay = 0.05;
    buffer = Pftk_netsim.Queue_discipline.drop_tail ~capacity:100;
  }

let styles =
  [
    ("reno", Reno.Reno_recovery);
    ("newreno", Reno.Newreno_recovery);
    ("sack", Reno.Sack_recovery);
  ]

let () =
  (* Scenario 1: exactly k losses in one window. *)
  Format.printf "Three losses in one window (packets 100, 103, 106):@.@.";
  Format.printf "%-9s %9s %9s %9s %10s@." "style" "rexmits" "timeouts"
    "fast-rx" "rate pkt/s";
  List.iter
    (fun (label, recovery) ->
      let pattern =
        Array.init 100_000 (fun i -> i = 100 || i = 103 || i = 106)
      in
      let scenario =
        {
          base with
          Connection.data_loss = Some (Loss.scripted pattern);
          sender = { Reno.default_config with recovery };
        }
      in
      let r = Connection.run ~duration:30. scenario in
      Format.printf "%-9s %9d %9d %9d %10.1f@." label
        r.Connection.retransmissions r.Connection.timeouts
        r.Connection.fast_retransmits r.Connection.send_rate)
    styles;

  (* Scenario 2: sustained random loss. *)
  Format.printf "@.Sustained Bernoulli loss (p = 0.03, 300 s):@.@.";
  Format.printf "%-9s %10s %9s %9s@." "style" "rate pkt/s" "timeouts" "fast-rx";
  List.iter
    (fun (label, recovery) ->
      let rng = Pftk_stats.Rng.create ~seed:4L () in
      let scenario =
        {
          base with
          Connection.data_loss = Some (Loss.bernoulli rng ~p:0.03);
          sender = { Reno.default_config with recovery };
        }
      in
      let r = Connection.run ~seed:4L ~duration:300. scenario in
      Format.printf "%-9s %10.1f %9d %9d@." label r.Connection.send_rate
        r.Connection.timeouts r.Connection.fast_retransmits)
    styles;
  Format.printf
    "@.The PFTK model describes the first row (classic Reno); the gap to@.";
  Format.printf
    "SACK above is the headroom the paper's future-work section points at.@."
