(* Short flows: why the bulk-transfer equation is not enough for the web.

   The PFTK equation describes a sender that has been running forever.  A
   12-kB web object of 1998 fits in ~9 packets and never leaves slow start;
   its completion time is dominated by the handshake and the exponential
   window ramp.  This example uses the Cardwell-style extension
   (Pftk_core.Short_flow, the paper's reference [2]) to budget page-load
   time across object sizes and loss rates, and shows where the bulk model
   takes over.

   Run with:  dune exec examples/short_flows.exe *)

open Pftk_core

let params = Params.make ~rtt:0.08 ~t0:1.0 ~wm:32 ()

let sizes = [ 1; 3; 9; 30; 100; 300; 1000; 10_000 ]

let () =
  Format.printf
    "Transfer completion time (s), %a (Cardwell short-flow model)@.@."
    Params.pp params;
  Format.printf "%-9s" "packets";
  List.iter (fun p -> Format.printf " %10s" (Printf.sprintf "p=%g" p))
    [ 0.001; 0.01; 0.05 ];
  Format.printf " %12s@." "bulk@p=0.01";
  List.iter
    (fun packets ->
      Format.printf "%-9d" packets;
      List.iter
        (fun p ->
          let phases = Short_flow.expected_latency params ~p ~packets in
          Format.printf " %10.3f" phases.Short_flow.total)
        [ 0.001; 0.01; 0.05 ];
      (* What the bulk model alone would promise (no handshake, no slow
         start): size / B(p). *)
      Format.printf " %12.3f@."
        (float_of_int packets /. Full_model.send_rate params 0.01))
    sizes;

  (* Phase breakdown for one typical web object. *)
  let packets = 9 and p = 0.01 in
  let phases = Short_flow.expected_latency params ~p ~packets in
  Format.printf
    "@.Anatomy of a %d-packet transfer at p = %g:@." packets p;
  List.iter
    (fun (label, v) -> Format.printf "  %-22s %6.3f s@." label v)
    [
      ("handshake", phases.Short_flow.handshake);
      ("slow start", phases.Short_flow.slow_start);
      ("loss recovery (expected)", phases.Short_flow.recovery);
      ("congestion avoidance", phases.Short_flow.congestion_avoidance);
      ("delayed ACK", phases.Short_flow.delayed_ack);
      ("total", phases.Short_flow.total);
    ];
  Format.printf
    "@.The bulk model's per-packet cost (1/B = %.3f s) predicts %.3f s for \
     the same object:@.less than half the real latency -- the short-flow \
     refinement matters below ~100 packets.@."
    (1. /. Full_model.send_rate params p)
    (float_of_int packets /. Full_model.send_rate params p)
